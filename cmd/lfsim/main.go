// Command lfsim runs ad-hoc congestion-control scenarios on the simulated
// testbed: one dumbbell, N flows under a chosen scheme, with goodput,
// retransmission and CPU reports. It is the quick-look companion to the
// structured experiments in cmd/lfbench.
//
// Example:
//
//	lfsim -cc lf-aurora -flows 4 -duration 5s -congested
//	lfsim -cc ccp-aurora -interval 10ms -flows 10
//	lfsim -cc bbr -flows 10
//
// Telemetry: -trace writes a Chrome trace-event JSON (load it in Perfetto or
// chrome://tracing; snapshot versions render as per-pid span trees),
// -metrics-out writes Prometheus text exposition, -flight-out records every
// metric on a virtual-time tick as JSON lines, and -listen serves them live
// on /metrics, /debug/trace and /debug/flight after the run.
//
//	lfsim -cc lf-aurora -adapt -congested -trace trace.json -metrics-out metrics.prom
//
// -fleet N switches to the snapshot distribution-plane scenario: one fleet
// controller serving N kernel datapaths on a spine–leaf fabric under a
// drifting model. A fault profile other than none enables the chaos variant
// (injected slow-path outages on odd members).
//
//	lfsim -fleet 8 -duration 2s -fault-profile chaos
//
// -scenario runs a named actor scenario from the embedded corpus (or a JSON
// file): persistent per-user session state machines — web, video-ABR, RPC
// fan-out, bulk — on a spine–leaf fabric, with an acceptance envelope that
// -scenario-check turns into an exit code. See DESIGN.md §4j.
//
//	lfsim -scenario-list
//	lfsim -scenario rpc-incast -scenario-check
//	lfsim -scenario web-baseline -sim-domains 4
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/liteflow-sim/liteflow/internal/cc"
	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/experiments"
	"github.com/liteflow-sim/liteflow/internal/fault"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
	"github.com/liteflow-sim/liteflow/internal/quant"
	"github.com/liteflow-sim/liteflow/internal/scenario"
	"github.com/liteflow-sim/liteflow/internal/stats"
	"github.com/liteflow-sim/liteflow/internal/tcp"
	"github.com/liteflow-sim/liteflow/internal/topo"
)

// options carries every flag so runs are reproducible from tests.
type options struct {
	scheme    string
	fleet     int
	canary    int
	canaryWin time.Duration
	flows     int
	duration  time.Duration
	warmup    time.Duration
	interval  time.Duration
	congested bool
	adapt     bool
	batchT    time.Duration
	pretrain  int
	seed      int64
	reps      int
	parallel  int

	simDomains int

	scenario      string
	scenarioList  bool
	scenarioCheck bool
	scenarioScale float64
	fleetScenario string

	cacheTimeout time.Duration
	cacheShards  int

	faultProfile string
	faultSeed    int64

	trace       string
	traceJSONL  string
	metricsOut  string
	flightOut   string
	flightEvery time.Duration
	listen      string
	traceEvents int
}

func main() {
	var o options
	flag.StringVar(&o.scheme, "cc", "bbr", "scheme: bbr | cubic | lf-aurora | lf-mocc | ccp-aurora | ccp-mocc")
	flag.IntVar(&o.fleet, "fleet", 0, "run the fleet distribution-plane scenario with this many members instead of a CC scenario (0 = off); a -fault-profile other than none selects the chaos variant")
	flag.IntVar(&o.canary, "canary", 0, "with -fleet: stage each minted epoch on this many canary members and auto-rollback on a failed health verdict before the rest of the fleet sees it (0 = fan out everywhere at once), see DESIGN.md §4i")
	flag.DurationVar(&o.canaryWin, "canary-window", 0, "with -canary: virtual-time observation window before the canary verdict (0 = four slow-path aggregation intervals)")
	flag.IntVar(&o.flows, "flows", 1, "concurrent flows")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "measured duration (after warmup)")
	flag.DurationVar(&o.warmup, "warmup", 2*time.Second, "warmup before measurement starts")
	flag.DurationVar(&o.interval, "interval", 10*time.Millisecond, "CCP communication interval (0 = per-ACK)")
	flag.BoolVar(&o.congested, "congested", false, "1 Gbps bottleneck + 0.1 Gbps UDP background")
	flag.BoolVar(&o.adapt, "adapt", false, "lf-* schemes: wire the userspace slow path (netlink batching + service)")
	flag.DurationVar(&o.batchT, "batch-interval", 100*time.Millisecond, "slow-path batch delivery interval T (with -adapt)")
	flag.IntVar(&o.pretrain, "pretrain", 400, "policy pretraining iterations for NN schemes")
	flag.Int64Var(&o.seed, "seed", 2, "base random seed; rep r runs at seed+r (and fault-seed+r)")
	flag.IntVar(&o.reps, "reps", 1, "repetitions of the scenario; reports median/p95 aggregate goodput")
	flag.IntVar(&o.parallel, "parallel", 1, "worker-pool size for -reps (each rep owns a private engine)")
	flag.IntVar(&o.simDomains, "sim-domains", 0, "run the CC scenario on a conservative-lookahead parallel engine with this many worker goroutines (0 = classic serial engine); reports are byte-identical for every value, see DESIGN.md §4h")
	flag.StringVar(&o.scenario, "scenario", "", "run an actor scenario instead of a CC scenario: an embedded corpus name (see -scenario-list) or a path to a scenario JSON file; honors -sim-domains, see DESIGN.md §4j")
	flag.BoolVar(&o.scenarioList, "scenario-list", false, "list the embedded scenario corpus and exit")
	flag.BoolVar(&o.scenarioCheck, "scenario-check", false, "with -scenario: exit non-zero if the run violates the scenario's acceptance envelope")
	flag.Float64Var(&o.scenarioScale, "scenario-scale", 1, "with -scenario: scale the session population (envelopes only apply at 1)")
	flag.StringVar(&o.fleetScenario, "fleet-scenario", "", "with -fleet: shape member query cadence by this scenario's arrival process (name or JSON path; diurnal scenarios make fleet load breathe day/night)")
	flag.DurationVar(&o.cacheTimeout, "cache-timeout", 0, "lf-* schemes: flow-cache idle timeout (0 = entries pinned for the whole run)")
	flag.IntVar(&o.cacheShards, "cache-shards", 0, "lf-* schemes: flow-cache shard count (0 = default; rounded up to a power of two)")
	flag.StringVar(&o.faultProfile, "fault-profile", "none", "fault injection profile: none | netlink | slowpath | chaos")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "seed for the deterministic fault injector")
	flag.StringVar(&o.trace, "trace", "", "write Chrome trace-event JSON to this file")
	flag.StringVar(&o.traceJSONL, "trace-jsonl", "", "write trace events as JSON lines to this file")
	flag.StringVar(&o.metricsOut, "metrics-out", "", "write Prometheus text metrics to this file")
	flag.StringVar(&o.flightOut, "flight-out", "", "write a flight recording (every metric sampled on a virtual-time tick) as JSON lines to this file")
	flag.DurationVar(&o.flightEvery, "flight-interval", time.Millisecond, "virtual-time interval between flight-recorder samples (with -flight-out or -listen)")
	flag.StringVar(&o.listen, "listen", "", "serve /metrics and /debug/trace on this address after the run (e.g. :9090)")
	flag.IntVar(&o.traceEvents, "trace-events", obs.DefaultTraceCapacity, "trace ring capacity in events")
	flag.Parse()

	if err := run(o, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lfsim:", err)
		os.Exit(1)
	}
}

// staticUser is the slow-path user for -adapt runs: it never retunes the
// model, so the service's convergence gate opens immediately and every
// necessity check exercises the full netlink round trip (then skips the
// install because fidelity loss is zero).
type staticUser struct{ net *nn.Network }

func (u staticUser) Freeze() *nn.Network          { return u.net }
func (u staticUser) Stability() float64           { return 1 }
func (u staticUser) Infer(in []float64) []float64 { return u.net.Infer(in) }
func (u staticUser) Adapt([]core.Sample)          {}

// sampledBackend wraps the kernel fast path and mirrors each query into the
// netlink batch buffer, standing in for the paper's kernel-side data
// collector.
type sampledBackend struct {
	inner cc.Backend
	ch    *netlink.Channel
	eng   *netsim.Engine
}

func (b *sampledBackend) Query(state []float64, reply func(action float64)) {
	b.inner.Query(state, func(a float64) {
		b.ch.Push(core.EncodeSample(core.Sample{
			Input: append([]float64(nil), state...),
			Aux:   []float64{a},
			At:    b.eng.Now(),
		}))
		reply(a)
	})
}

// run dispatches between the single-run path and the multi-rep harness. Rep
// r re-runs the identical scenario with seed+r (and fault-seed+r), each rep
// on a private engine, optionally across a bounded worker pool; per-rep
// reports print in rep order followed by a median/p95 aggregate-goodput
// summary. Wall-clock timing goes to stderr.
func run(o options, stdout, stderr io.Writer) error {
	if o.scenarioList {
		return listScenarios(stdout)
	}
	if o.scenario != "" {
		return runScenario(o, stdout)
	}
	reps := o.reps
	if reps < 1 {
		reps = 1
	}
	if reps == 1 {
		_, err := runOnce(o, 0, stdout, stderr)
		return err
	}
	if o.trace != "" || o.traceJSONL != "" || o.metricsOut != "" || o.flightOut != "" || o.listen != "" {
		return fmt.Errorf("-trace/-trace-jsonl/-metrics-out/-flight-out/-listen export a single run's telemetry; use -reps 1")
	}

	workers := o.parallel
	if workers < 1 {
		workers = 1
	}
	if workers > reps {
		workers = reps
	}
	type repOut struct {
		stdout, stderr bytes.Buffer
		goodput        float64
		wall           time.Duration
		err            error
	}
	outs := make([]repOut, reps)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				start := time.Now()
				outs[r].goodput, outs[r].err = runOnce(o, r, &outs[r].stdout, &outs[r].stderr)
				outs[r].wall = time.Since(start)
			}
		}()
	}
	for r := 0; r < reps; r++ {
		next <- r
	}
	close(next)
	wg.Wait()

	goodput := stats.NewDist(reps)
	wall := stats.NewDist(reps)
	for r := range outs {
		fmt.Fprintf(stdout, "--- rep %d (seed %d) ---\n", r, o.seed+int64(r))
		io.Copy(stdout, &outs[r].stdout)
		io.Copy(stderr, &outs[r].stderr)
		if outs[r].err != nil {
			return fmt.Errorf("rep %d: %w", r, outs[r].err)
		}
		goodput.Add(outs[r].goodput)
		wall.Add(float64(outs[r].wall))
	}
	unit := "Gbps"
	if o.fleet > 0 {
		unit = "queries/s" // fleet runs report model-query throughput
	}
	fmt.Fprintf(stdout, "reps summary: aggregate goodput median %.3f %s, p95 %.3f %s over %d reps (seeds %d..%d)\n",
		goodput.Median(), unit, goodput.Quantile(0.95), unit, reps, o.seed, o.seed+int64(reps-1))
	fmt.Fprintf(stderr, "(wall: median %.1fs, p95 %.1fs)\n",
		time.Duration(wall.Median()).Seconds(), time.Duration(wall.Quantile(0.95)).Seconds())
	return nil
}

// runOnce executes one scenario instance. rep offsets the pretraining and
// fault seeds; the returned goodput is the aggregate across flows in Gbps.
func runOnce(o options, rep int, stdout, stderr io.Writer) (float64, error) {
	wantTelemetry := o.trace != "" || o.traceJSONL != "" || o.metricsOut != "" || o.flightOut != "" || o.listen != ""
	var reg *obs.Registry
	var tracer *obs.Tracer
	var sc obs.Scope
	if wantTelemetry {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(o.traceEvents)
		sc = obs.New(reg, tracer)
	}
	var flight *obs.FlightRecorder
	if o.flightOut != "" || o.listen != "" {
		flight = obs.NewFlightRecorder(0)
	}

	prof, ok := fault.ByName(o.faultProfile)
	if !ok {
		return 0, fmt.Errorf("unknown fault profile %q (want none|netlink|slowpath|chaos)", o.faultProfile)
	}
	if o.fleet > 0 {
		if o.simDomains >= 1 {
			return 0, fmt.Errorf("-sim-domains does not apply to -fleet scenarios (the distribution plane schedules across members and runs on the classic engine)")
		}
		if o.canary >= o.fleet {
			return 0, fmt.Errorf("-canary %d must leave at least one non-canary member (-fleet %d)", o.canary, o.fleet)
		}
		return runFleet(o, rep, prof.Active(), sc, reg, tracer, flight, stdout, stderr)
	}
	if o.canary > 0 {
		return 0, fmt.Errorf("-canary requires -fleet (staged rollouts are a distribution-plane feature)")
	}
	if flight != nil && o.simDomains >= 1 {
		return 0, fmt.Errorf("-flight-out/-listen sample fleet-wide metrics on a virtual-time tick, which would read other partitions mid-window; drop -sim-domains for flight recording")
	}

	var eng *netsim.Engine
	if o.simDomains >= 1 {
		eng = netsim.NewParallelEngine(o.simDomains)
	} else {
		eng = netsim.NewEngine()
	}
	opts := topo.TestbedOpts(1)
	if !o.congested {
		opts.BottleneckBps = 40e9
		opts.BufferBytes = 4 << 20
	}
	d := topo.BuildDumbbell(eng, opts, opt.WithScope(sc))
	costs := ksim.DefaultCosts()
	d.ProvisionCPUs(4, costs, opt.WithScope(sc))
	sender, receiver := d.Senders[0], d.Receivers[0]

	// Everything that drives the sender — congestion controllers, the
	// LiteFlow core, the slow path, fault injection — schedules on the sender
	// host's partition view. On a classic engine these alias eng, so the
	// serial schedule is untouched.
	ctlEng := sender.Eng
	ctlSC := sender.Eng.PartitionScope(sc)

	var inj *fault.Injector
	if prof.Active() {
		inj = fault.New(prof, o.faultSeed+int64(rep), ctlSC)
	}
	if inj != nil {
		// CPU overload spikes land on the sender host, where the fast path
		// and the slow path both live.
		inj.StartCPUSpikes(ctlEng, func(work int64) {
			sender.CPU.Charge(ksim.SoftIRQ, netsim.Time(work))
		})
		defer inj.StopCPUSpikes()
	}

	if o.congested {
		u := tcp.NewUDPSource(d.UDPHost, 9999, receiver.ID, 100e6)
		u.Start()
		defer u.Stop()
	}

	// Policy nets for the NN schemes.
	isLF := o.scheme == "lf-aurora" || o.scheme == "lf-mocc"
	needAurora := o.scheme == "lf-aurora" || o.scheme == "ccp-aurora"
	needMOCC := o.scheme == "lf-mocc" || o.scheme == "ccp-mocc"
	var lf *core.Core
	var svc *core.Service
	var ch *netlink.Channel
	var policy cc.Policy
	var macs int
	if needAurora || needMOCC {
		net := cc.NewAuroraNet(1)
		if needMOCC {
			net = cc.NewMOCCNet(1)
		}
		fmt.Fprintln(stderr, "pretraining policy network…")
		cc.Pretrain(net, o.pretrain, o.seed+int64(rep))
		policy = cc.NewNNPolicy(net)
		macs = net.MACs()
		if isLF {
			cfg := core.DefaultConfig()
			cfg.FlowCacheTimeout = netsim.Time(o.cacheTimeout.Nanoseconds())
			cfg.FlowCacheShards = o.cacheShards
			coreOpts := []opt.Option{opt.WithScope(ctlSC)}
			if inj != nil && o.adapt {
				// With faults on, arm the watchdog so a stalled slow path
				// degrades gracefully instead of serving a half-built
				// standby forever. Window = 3 batch intervals.
				coreOpts = append(coreOpts, opt.WithWatchdog(opt.Watchdog{
					Window: 3 * o.batchT.Nanoseconds(),
				}))
			}
			lf = core.NewCore(ctlEng, sender.CPU, costs, cfg, coreOpts...)
			mod, err := codegen.Build(quant.Quantize(net, cfg.Quant), "model")
			if err != nil {
				return 0, err
			}
			if _, err := lf.RegisterModel(mod); err != nil {
				return 0, err
			}
			if o.adapt {
				ch = netlink.NewChannel(ctlEng, sender.CPU, costs, nil,
					opt.WithScope(ctlSC), opt.WithFaults(inj))
				svc = core.NewSlowPath(lf, ch, staticUser{net}, staticUser{net}, staticUser{net},
					opt.WithFaults(inj))
				svc.Start(netsim.Time(o.batchT.Nanoseconds()))
			}
		}
	}
	if o.adapt && !isLF {
		return 0, fmt.Errorf("-adapt requires an lf-* scheme, got %q", o.scheme)
	}

	var ctrls []*cc.MIController
	var schemeErr error
	makeCtrl := func(flow netsim.FlowID) tcp.CongestionControl {
		switch o.scheme {
		case "bbr":
			return cc.NewBBR()
		case "cubic":
			return cc.NewCubic()
		case "lf-aurora", "lf-mocc":
			var backend cc.Backend = core.NewFlowBackend(lf, flow)
			if ch != nil {
				backend = &sampledBackend{inner: backend, ch: ch, eng: ctlEng}
			}
			m := cc.NewMIController(ctlEng, backend, 500e6)
			ctrls = append(ctrls, m)
			return m
		case "ccp-aurora", "ccp-mocc":
			b := &cc.CCPBackend{Eng: ctlEng, CPU: sender.CPU, Costs: costs,
				Policy: policy, Interval: netsim.Time(o.interval.Nanoseconds()), UserMACs: macs}
			m := cc.NewMIController(ctlEng, b, 500e6)
			ctrls = append(ctrls, m)
			return m
		}
		schemeErr = fmt.Errorf("unknown scheme %q", o.scheme)
		return cc.NewBBR() // placeholder; the error aborts the run below
	}

	perFlow := make([]int64, o.flows)
	measuring := false
	var senders []*tcp.Sender
	for i := 0; i < o.flows; i++ {
		i := i
		f := netsim.FlowID(i + 1)
		s := tcp.NewSender(sender, f, receiver.ID, 0, makeCtrl(f))
		if schemeErr != nil {
			return 0, schemeErr
		}
		rcv := tcp.NewReceiver(receiver, f, sender.ID)
		rcv.OnDeliver = func(n int, now netsim.Time) {
			if measuring {
				perFlow[i] += int64(n)
			}
		}
		s.Start()
		senders = append(senders, s)
	}

	runEnd := netsim.Time((o.warmup + o.duration).Nanoseconds())
	if flight != nil && reg != nil {
		every := netsim.Time(o.flightEvery.Nanoseconds())
		if every <= 0 {
			every = netsim.Time(time.Millisecond.Nanoseconds())
		}
		var flightTick func()
		flightTick = func() {
			flight.Sample(reg, int64(eng.Now()))
			if eng.Now() < runEnd {
				eng.After(every, flightTick)
			}
		}
		eng.After(every, flightTick)
	}

	warmup := netsim.Time(o.warmup.Nanoseconds())
	eng.RunUntil(warmup)
	measuring = true
	sender.CPU.ResetAccounting()
	eng.RunUntil(warmup + netsim.Time(o.duration.Nanoseconds()))
	for _, m := range ctrls {
		m.Stop()
	}
	if ch != nil {
		ch.StopBatching()
	}
	if lf != nil {
		lf.StopSweeper()
		lf.StopWatchdog()
	}

	secs := o.duration.Seconds()
	var agg float64
	for i, b := range perFlow {
		g := float64(b*8) / secs / 1e9
		agg += g
		fmt.Fprintf(stdout, "flow %2d: %7.3f Gbps (rtx %d, timeouts %d)\n", i+1, g,
			senders[i].Retransmits, senders[i].Timeouts)
	}
	fmt.Fprintf(stdout, "aggregate: %.3f Gbps over %s\n", agg, o.scheme)
	fmt.Fprintf(stdout, "sender CPU: %s\n", sender.CPU.Report())
	if lf != nil {
		st := lf.Stats()
		fmt.Fprintf(stdout, "liteflow core: %d queries, %d cache hits, %d models\n",
			st.Queries, st.CacheHits, lf.Models())
	}
	if svc != nil {
		st := svc.Stats()
		fmt.Fprintf(stdout, "liteflow service: %d batches, %d samples, %d fidelity checks, %d skipped, %d updates\n",
			st.Batches, st.Samples, st.FidelityChecks, st.SkippedByNecessity, st.Updates)
	}
	if inj != nil {
		fs := inj.Stats()
		fmt.Fprintf(stdout, "faults injected: %d total (%d drops, %d corrupt, %d delays, %d reorders, %d build fails, %d outages, %d cpu spikes)\n",
			fs.Total(), fs.Drops, fs.Corrupts, fs.Delays, fs.Reorders, fs.BuildFails+fs.QuantFails, fs.Outages, fs.Spikes)
		if lf != nil {
			st := lf.Stats()
			fmt.Fprintf(stdout, "degradation: %d degraded, %d recovered\n", st.Degraded, st.Recovered)
		}
	}

	if err := writeExports(o, reg, tracer, flight); err != nil {
		return 0, err
	}
	warnEvictions(tracer, stderr)
	if o.listen != "" {
		fmt.Fprintf(stderr, "serving telemetry on %s (/metrics, /debug/trace, /debug/flight) — ctrl-c to stop\n", o.listen)
		return agg, http.ListenAndServe(o.listen, obs.NewHTTPHandler(reg, tracer, flight))
	}
	return agg, nil
}

// runFleet executes the fleet distribution-plane scenario (-fleet N): one
// controller slow path serving N kernel datapaths on a spine–leaf fabric,
// under a drifting model that keeps minting snapshot versions. With chaos,
// odd members go dark on a jittered schedule, installs park on the degraded
// cores, and the recovery tail must restore epoch parity. The returned
// aggregate is the fleet-wide model-query rate in queries/s.
func runFleet(o options, rep int, chaos bool, sc obs.Scope, reg *obs.Registry, tracer *obs.Tracer, flight *obs.FlightRecorder, stdout, stderr io.Writer) (float64, error) {
	var workload *scenario.Spec
	if o.fleetScenario != "" {
		var err error
		if workload, err = loadScenario(o.fleetScenario); err != nil {
			return 0, err
		}
	}
	r := experiments.RunFleetScenario(experiments.FleetScenarioOpts{
		Members:      o.fleet,
		Seed:         o.seed + int64(rep),
		Dur:          netsim.Time(o.duration.Nanoseconds()),
		Chaos:        chaos,
		Obs:          sc,
		CacheShards:  o.cacheShards,
		Flight:       flight,
		FlightEvery:  netsim.Time(o.flightEvery.Nanoseconds()),
		CanaryCount:  o.canary,
		CanaryWindow: netsim.Time(o.canaryWin.Nanoseconds()),
		Workload:     workload,
	})
	st := r.Stats
	fmt.Fprintf(stdout, "fleet: %d members, epoch %d, %d member installs (%d parked, %d abandoned, %d deferred)\n",
		r.Members, st.Epoch, st.MemberInstalls, st.InstallsParked, st.InstallsAbandoned, st.InstallsDeferred)
	fmt.Fprintf(stdout, "fleet slow path: %d aggregations, %d samples, %d fidelity checks, %d skipped, %d outage drops\n",
		st.Aggregations, st.Samples, st.FidelityChecks, st.SkippedByNecessity, st.OutageDrops)
	fmt.Fprintf(stdout, "fleet staleness: mean %.3f, peak %d, final %d; member epochs %v\n",
		r.MeanStale, r.PeakStale, st.StaleMembers, r.Epochs)
	if o.canary > 0 {
		fmt.Fprintf(stdout, "fleet canary: released epoch %d, %d passes, %d fails, %d rollbacks, blacklist %v\n",
			st.ReleasedEpoch, st.CanaryPasses, st.CanaryFails, st.Rollbacks, r.Blacklisted)
	}
	fmt.Fprintf(stdout, "aggregate: %.0f queries/s across %d members\n", r.GoodputQPS, r.Members)
	if err := writeExports(o, reg, tracer, flight); err != nil {
		return 0, err
	}
	warnEvictions(tracer, stderr)
	if o.listen != "" {
		fmt.Fprintf(stderr, "serving telemetry on %s (/metrics, /debug/trace, /debug/flight) — ctrl-c to stop\n", o.listen)
		return r.GoodputQPS, http.ListenAndServe(o.listen, obs.NewHTTPHandler(reg, tracer, flight))
	}
	return r.GoodputQPS, nil
}

// warnEvictions tells the user when the trace ring wrapped: the exported
// trace is missing its oldest events (a synthetic trace_ring_overflow event
// marks the spot in the export itself).
func warnEvictions(tracer *obs.Tracer, stderr io.Writer) {
	if tracer != nil && tracer.Evicted() > 0 {
		fmt.Fprintf(stderr, "lfsim: trace ring overflowed, %d oldest events evicted (raise -trace-events to keep them)\n", tracer.Evicted())
	}
}

// writeExports flushes the run's telemetry to the requested files.
func writeExports(o options, reg *obs.Registry, tracer *obs.Tracer, flight *obs.FlightRecorder) error {
	writeTo := func(path string, write func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if o.trace != "" {
		if err := writeTo(o.trace, tracer.WriteChromeTrace); err != nil {
			return err
		}
	}
	if o.traceJSONL != "" {
		if err := writeTo(o.traceJSONL, tracer.WriteJSONL); err != nil {
			return err
		}
	}
	if o.metricsOut != "" {
		if err := writeTo(o.metricsOut, reg.WritePrometheus); err != nil {
			return err
		}
	}
	if o.flightOut != "" {
		if err := writeTo(o.flightOut, flight.WriteJSONL); err != nil {
			return err
		}
	}
	return nil
}
