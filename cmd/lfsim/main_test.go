package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// smokeOpts is a short congested lf-aurora run with the full slow path, sized
// so the whole test finishes in a couple of seconds.
func smokeOpts(dir string) options {
	return options{
		scheme:    "lf-aurora",
		flows:     1,
		duration:  100 * time.Millisecond,
		warmup:    50 * time.Millisecond,
		interval:  10 * time.Millisecond,
		congested: true,
		adapt:     true,
		batchT:    20 * time.Millisecond,
		pretrain:  40,

		trace:      filepath.Join(dir, "trace.json"),
		traceJSONL: filepath.Join(dir, "trace.jsonl"),
		metricsOut: filepath.Join(dir, "metrics.prom"),
	}
}

func TestLfsimSmoke(t *testing.T) {
	dir := t.TempDir()
	o := smokeOpts(dir)
	var stdout, stderr bytes.Buffer
	if err := run(o, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}

	report := stdout.String()
	for _, want := range []string{"aggregate:", "sender CPU:", "liteflow core:", "liteflow service:"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	raw, err := os.ReadFile(o.trace)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Fatalf("trace is not valid JSON (%d bytes)", len(raw))
	}
	var doc struct {
		TraceEvents []struct {
			Cat  string `json:"cat"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	cats := map[string]bool{}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		cats[e.Cat] = true
		names[e.Cat+"/"+e.Name] = true
	}
	for _, cat := range []string{"snapshot", "flowcache", "netlink", "cpu"} {
		if !cats[cat] {
			t.Errorf("trace missing category %q (have %v)", cat, cats)
		}
	}
	if !names["snapshot/install"] {
		t.Error("trace missing snapshot/install event")
	}
	if !names["netlink/flush"] {
		t.Error("trace missing netlink/flush event")
	}

	jl, err := os.ReadFile(o.traceJSONL)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range bytes.Split(bytes.TrimSpace(jl), []byte("\n")) {
		if !json.Valid(line) {
			t.Fatalf("trace.jsonl line %d is not valid JSON: %s", i+1, line)
		}
	}

	prom, err := os.ReadFile(o.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE liteflow_core_queries_total counter",
		"# TYPE liteflow_cpu_busy_ns_total counter",
		"# TYPE liteflow_netlink_flushes_total counter",
		"# TYPE liteflow_core_stall_ns histogram",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// repsOpts is a short lf-aurora run without the slow path, repeated 3 times:
// each rep pretrains at seed+rep, so the reps genuinely differ and the
// median/p95 summary aggregates distinct values.
func repsOpts(parallel int) options {
	return options{
		scheme:    "lf-aurora",
		flows:     1,
		duration:  100 * time.Millisecond,
		warmup:    50 * time.Millisecond,
		interval:  10 * time.Millisecond,
		congested: true,
		pretrain:  40,
		seed:      2,
		reps:      3,
		parallel:  parallel,
	}
}

// TestLfsimRepsParallelMatchesSerial: the multi-rep harness must print the
// same bytes whether reps run on one worker or several — per-rep sections in
// rep order plus the aggregate summary.
func TestLfsimRepsParallelMatchesSerial(t *testing.T) {
	runReps := func(parallel int) string {
		var stdout, stderr bytes.Buffer
		if err := run(repsOpts(parallel), &stdout, &stderr); err != nil {
			t.Fatalf("run -parallel %d: %v\nstderr: %s", parallel, err, stderr.String())
		}
		return stdout.String()
	}
	serial := runReps(1)
	parallel := runReps(3)
	if serial != parallel {
		t.Errorf("stdout differs between -parallel 1 and -parallel 3:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
	}
	for rep := 0; rep < 3; rep++ {
		header := "--- rep " + strconv.Itoa(rep) + " (seed " + strconv.Itoa(2+rep) + ") ---"
		if !strings.Contains(serial, header) {
			t.Errorf("report missing %q", header)
		}
	}
	if !strings.Contains(serial, "reps summary: aggregate goodput median") ||
		!strings.Contains(serial, "over 3 reps (seeds 2..4)") {
		t.Errorf("report missing reps summary:\n%s", serial)
	}
}

// TestLfsimRepsRejectTelemetryExports: the export flags describe one run's
// telemetry; combining them with -reps must fail loudly instead of silently
// writing one arbitrary rep.
func TestLfsimRepsRejectTelemetryExports(t *testing.T) {
	o := repsOpts(1)
	o.trace = filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr bytes.Buffer
	err := run(o, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "-reps 1") {
		t.Fatalf("expected export/reps conflict error, got %v", err)
	}
}

// TestLfsimDeterminism runs the same configuration twice and requires
// byte-identical telemetry exports — the reproducibility contract for
// simulated-time tracing.
func TestLfsimDeterminism(t *testing.T) {
	read := func(dir string) (trace, jsonl, prom []byte) {
		o := smokeOpts(dir)
		var stdout, stderr bytes.Buffer
		if err := run(o, &stdout, &stderr); err != nil {
			t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
		}
		for _, p := range []struct {
			path string
			dst  *[]byte
		}{{o.trace, &trace}, {o.traceJSONL, &jsonl}, {o.metricsOut, &prom}} {
			b, err := os.ReadFile(p.path)
			if err != nil {
				t.Fatal(err)
			}
			*p.dst = b
		}
		return
	}
	t1, j1, p1 := read(t.TempDir())
	t2, j2, p2 := read(t.TempDir())
	if !bytes.Equal(t1, t2) {
		t.Errorf("Chrome traces differ between same-seed runs (%d vs %d bytes)", len(t1), len(t2))
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("JSONL traces differ between same-seed runs (%d vs %d bytes)", len(j1), len(j2))
	}
	if !bytes.Equal(p1, p2) {
		t.Errorf("Prometheus exports differ between same-seed runs:\n--- run1\n%s\n--- run2\n%s", p1, p2)
	}
}

// TestLfsimFleetSmoke runs the -fleet scenario in chaos mode with telemetry
// exports and checks the report, the fleet metric families, and run-to-run
// byte-identical exports (the determinism contract extends to the
// distribution plane).
func TestLfsimFleetSmoke(t *testing.T) {
	runFleetOnce := func(dir string) (report string, prom, trace []byte) {
		o := options{
			fleet:        4,
			duration:     400 * time.Millisecond,
			seed:         3,
			faultProfile: "chaos",
			trace:        filepath.Join(dir, "trace.json"),
			metricsOut:   filepath.Join(dir, "metrics.prom"),
		}
		var stdout, stderr bytes.Buffer
		if err := run(o, &stdout, &stderr); err != nil {
			t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
		}
		p, err := os.ReadFile(o.metricsOut)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := os.ReadFile(o.trace)
		if err != nil {
			t.Fatal(err)
		}
		return stdout.String(), p, tr
	}

	r1, p1, t1 := runFleetOnce(t.TempDir())
	for _, want := range []string{"fleet: 4 members", "fleet slow path:", "fleet staleness:", "queries/s across 4 members"} {
		if !strings.Contains(r1, want) {
			t.Errorf("report missing %q:\n%s", want, r1)
		}
	}
	for _, want := range []string{
		"# TYPE liteflow_fleet_member_installs_total counter",
		"# TYPE liteflow_fleet_stale_members gauge",
		"liteflow_fleet_member_epoch{",
		"liteflow_fleet_outage_drops_total",
	} {
		if !strings.Contains(string(p1), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !json.Valid(t1) {
		t.Fatalf("trace is not valid JSON (%d bytes)", len(t1))
	}

	r2, p2, t2 := runFleetOnce(t.TempDir())
	if r1 != r2 {
		t.Errorf("fleet reports differ between same-seed runs:\n--- run1\n%s\n--- run2\n%s", r1, r2)
	}
	if !bytes.Equal(p1, p2) {
		t.Error("fleet Prometheus exports differ between same-seed runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Errorf("fleet Chrome traces differ between same-seed runs (%d vs %d bytes)", len(t1), len(t2))
	}
}

// TestLfsimScenarioCLI covers the -scenario surface: corpus listing, a
// checked run from the embedded corpus, loading a spec from a JSON file, the
// envelope exit path, and the unknown-name error.
func TestLfsimScenarioCLI(t *testing.T) {
	var stdout bytes.Buffer
	if err := run(options{scenarioList: true}, &stdout, io.Discard); err != nil {
		t.Fatalf("scenario-list: %v", err)
	}
	for _, want := range []string{"web-baseline", "rpc-incast", "mega-web-1m"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-scenario-list output missing %q:\n%s", want, stdout.String())
		}
	}

	stdout.Reset()
	o := options{scenario: "rpc-incast", scenarioCheck: true, scenarioScale: 1}
	if err := run(o, &stdout, io.Discard); err != nil {
		t.Fatalf("scenario rpc-incast: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "envelope: OK") {
		t.Errorf("checked run did not report envelope OK:\n%s", stdout.String())
	}

	// A file-backed spec with an impossible envelope must trip -scenario-check.
	spec := `{
		"name": "impossible",
		"description": "file-backed spec for the CLI test",
		"fabric": {"profile": "dc", "hostsPerLeaf": 2},
		"durationMs": 20,
		"seed": 5,
		"actors": [{"class": "web", "count": 2, "thinkMs": 2}],
		"arrival": {"process": "uniform", "rampMs": 5},
		"envelope": {"minResponses": 1000000}
	}`
	path := filepath.Join(t.TempDir(), "impossible.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	err := run(options{scenario: path, scenarioCheck: true, scenarioScale: 1}, &stdout, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "envelope violated") {
		t.Errorf("impossible envelope: err = %v, want envelope violation", err)
	}
	// Without -scenario-check the same run succeeds but reports violations.
	stdout.Reset()
	if err := run(options{scenario: path, scenarioScale: 1}, &stdout, io.Discard); err != nil {
		t.Fatalf("unchecked run: %v", err)
	}
	if !strings.Contains(stdout.String(), "envelope: 1 violations") {
		t.Errorf("unchecked run did not print violations:\n%s", stdout.String())
	}

	if err := run(options{scenario: "no-such-scenario", scenarioScale: 1}, &stdout, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("unknown name: err = %v, want unknown-scenario error", err)
	}
	if err := run(options{scenario: "web-baseline", scenarioCheck: true, scenarioScale: 0.5}, &stdout, io.Discard); err == nil {
		t.Error("scenario-check at scale 0.5 should be rejected")
	}
}
