package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/liteflow-sim/liteflow/internal/scenario"
	"github.com/liteflow-sim/liteflow/scenarios"
)

// errEnvelope marks an acceptance-envelope violation under -scenario-check so
// main can exit non-zero without treating it as a harness failure.
type errEnvelope struct{ violations []string }

func (e errEnvelope) Error() string {
	return fmt.Sprintf("acceptance envelope violated (%d): %s",
		len(e.violations), strings.Join(e.violations, "; "))
}

// loadScenario resolves -scenario: an embedded corpus name, or a filesystem
// path when the argument looks like one (contains a separator or .json).
func loadScenario(arg string) (*scenario.Spec, error) {
	if strings.ContainsRune(arg, os.PathSeparator) || strings.HasSuffix(arg, ".json") {
		data, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		return scenario.Parse(data)
	}
	specs, err := scenario.LoadCorpus(scenarios.FS)
	if err != nil {
		return nil, err
	}
	for _, s := range specs {
		if s.Name == arg {
			return s, nil
		}
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return nil, fmt.Errorf("unknown scenario %q (corpus: %s)", arg, strings.Join(names, ", "))
}

// listScenarios prints the embedded corpus, one scenario per row.
func listScenarios(stdout io.Writer) error {
	specs, err := scenario.LoadCorpus(scenarios.FS)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-20s %8s %8s  %s\n", "name", "sessions", "dur(ms)", "description")
	for _, s := range specs {
		fmt.Fprintf(stdout, "%-20s %8d %8g  %s\n", s.Name, s.Sessions(), s.DurationMs, s.Description)
	}
	return nil
}

// runScenario executes one scenario through the harness and prints its
// report. With -scenario-check it returns errEnvelope on any violation (the
// CI acceptance-envelope job drives this path).
func runScenario(o options, stdout io.Writer) error {
	s, err := loadScenario(o.scenario)
	if err != nil {
		return err
	}
	if o.scenarioCheck && o.scenarioScale != 0 && o.scenarioScale != 1 {
		return fmt.Errorf("-scenario-check enforces the envelope, which is only defined at -scenario-scale 1 (got %g)", o.scenarioScale)
	}
	r, err := scenario.Run(s, scenario.RunOpts{
		Domains: o.simDomains,
		Scale:   o.scenarioScale,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, r.String())
	if o.scenarioCheck && len(r.Violations) > 0 {
		return errEnvelope{r.Violations}
	}
	return nil
}
