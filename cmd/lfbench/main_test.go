package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/experiments"
)

func TestLfbenchList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -list exited %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, r := range experiments.All() {
		if !strings.Contains(out, r.ID) {
			t.Errorf("-list output missing experiment %q", r.ID)
		}
	}
}

func TestLfbenchUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "no-such-figure"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown experiment exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

func TestLfbenchNoArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no-arg run exited %d, want 2", code)
	}
}

// TestLfbenchParallelMatchesSerial asserts the CLI contract documented in the
// package comment: for a fixed -seed/-scale, stdout and the telemetry exports
// are byte-identical regardless of -parallel, including under -reps.
func TestLfbenchParallelMatchesSerial(t *testing.T) {
	runOnce := func(parallel int) (report string, trace, prom []byte) {
		dir := t.TempDir()
		tracePath := filepath.Join(dir, "trace.json")
		promPath := filepath.Join(dir, "metrics.prom")
		var stdout, stderr bytes.Buffer
		args := []string{"-exp", "fig14", "-scale", "0.05", "-seed", "1",
			"-reps", "2", "-parallel", strconv.Itoa(parallel),
			"-trace", tracePath, "-metrics-out", promPath}
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("run -parallel %d exited %d\nstderr: %s", parallel, code, stderr.String())
		}
		tb, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := os.ReadFile(promPath)
		if err != nil {
			t.Fatal(err)
		}
		return stdout.String(), tb, pb
	}
	serialRep, serialTrace, serialProm := runOnce(1)
	parRep, parTrace, parProm := runOnce(4)
	if serialRep == "" {
		t.Fatal("empty report")
	}
	if serialRep != parRep {
		t.Errorf("stdout differs between -parallel 1 and -parallel 4:\n--- serial\n%s\n--- parallel\n%s", serialRep, parRep)
	}
	if !bytes.Equal(serialTrace, parTrace) {
		t.Errorf("trace export differs between -parallel 1 and -parallel 4 (%d vs %d bytes)", len(serialTrace), len(parTrace))
	}
	if !bytes.Equal(serialProm, parProm) {
		t.Errorf("metrics export differs between -parallel 1 and -parallel 4")
	}
	if !strings.Contains(serialRep, "aggregated over 2 reps") {
		t.Errorf("report missing reps aggregation note:\n%s", serialRep)
	}
}

// TestLfbenchBenchSnapshotRoundTrip drives the regression-tracking mode end
// to end: snapshot, clean comparison, injected regression, shape mismatch.
func TestLfbenchBenchSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "BENCH_test.json")

	var stdout, stderr bytes.Buffer
	args := []string{"-exp", "dummy", "-scale", "0.05", "-bench-out", snapPath}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("-bench-out exited %d\nstderr: %s", code, stderr.String())
	}
	for _, want := range []string{"exp/dummy", "micro/query_steady_state", "micro/query_model_batch64",
		"micro/lookup_many_flows", "micro/sweep_churn", "micro/fleet_fanout"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("bench table missing %q:\n%s", want, stdout.String())
		}
	}

	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Scale != 0.05 || len(snap.Entries) != 6 {
		t.Fatalf("snapshot shape: scale=%g entries=%d, want 0.05/6", snap.Scale, len(snap.Entries))
	}
	for _, e := range snap.Entries {
		// sweep_churn inserts fresh flows each op and fleet_fanout mints a
		// snapshot version per op, so both allocate by design; every other
		// micro is a steady-state hot path with a 0-alloc contract.
		if e.Name == "micro/sweep_churn" || e.Name == "micro/fleet_fanout" {
			continue
		}
		if strings.HasPrefix(e.Name, "micro/") && e.AllocsPerOp != 0 {
			t.Errorf("%s: %d allocs/op in snapshot, want 0", e.Name, e.AllocsPerOp)
		}
	}

	// Same workload against its own snapshot must pass (allocs are exact).
	stdout.Reset()
	stderr.Reset()
	args = []string{"-exp", "dummy", "-scale", "0.05", "-bench-baseline", snapPath, "-bench-allocs-only"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("clean -bench-baseline exited %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "bench comparison OK") {
		t.Errorf("missing OK line:\n%s", stdout.String())
	}

	// A baseline that promises fewer allocations must trip the gate.
	tampered := snap
	tampered.Entries = append([]benchEntry(nil), snap.Entries...)
	for i := range tampered.Entries {
		if strings.HasPrefix(tampered.Entries[i].Name, "exp/") {
			tampered.Entries[i].AllocsPerOp = 0
		}
	}
	tamperedPath := filepath.Join(dir, "BENCH_tampered.json")
	if err := writeSnapshot(tamperedPath, tampered); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	args = []string{"-exp", "dummy", "-scale", "0.05", "-bench-baseline", tamperedPath, "-bench-allocs-only"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("regressed -bench-baseline exited %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION diagnostic:\n%s", stderr.String())
	}

	// Comparing across workload shapes is refused, not silently tolerated.
	stdout.Reset()
	stderr.Reset()
	args = []string{"-exp", "dummy", "-scale", "0.1", "-bench-baseline", snapPath, "-bench-allocs-only"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("shape-mismatch -bench-baseline exited %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "shape mismatch") {
		t.Errorf("missing shape-mismatch diagnostic:\n%s", stderr.String())
	}
}

// TestLfbenchFlightParallelMatchesSerial: the flight recording (and the span
// trace it rides with) must be byte-identical regardless of -parallel — the
// §4d obligation extended to -flight-out.
func TestLfbenchFlightParallelMatchesSerial(t *testing.T) {
	runOnce := func(parallel int) (report string, flight, trace []byte) {
		dir := t.TempDir()
		flightPath := filepath.Join(dir, "flight.jsonl")
		tracePath := filepath.Join(dir, "trace.json")
		var stdout, stderr bytes.Buffer
		args := []string{"-exp", "fleet-canary", "-scale", "0.02", "-seed", "1",
			"-reps", "2", "-parallel", strconv.Itoa(parallel),
			"-flight-out", flightPath, "-trace", tracePath}
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("run -parallel %d exited %d\nstderr: %s", parallel, code, stderr.String())
		}
		fb, err := os.ReadFile(flightPath)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		return stdout.String(), fb, tb
	}
	serialRep, serialFlight, serialTrace := runOnce(1)
	parRep, parFlight, parTrace := runOnce(4)
	if len(serialFlight) == 0 {
		t.Fatal("flight recording is empty")
	}
	if serialRep != parRep {
		t.Errorf("stdout differs between -parallel 1 and -parallel 4:\n--- serial\n%s\n--- parallel\n%s", serialRep, parRep)
	}
	if !bytes.Equal(serialFlight, parFlight) {
		t.Errorf("flight export differs between -parallel 1 and -parallel 4 (%d vs %d bytes)", len(serialFlight), len(parFlight))
	}
	if !bytes.Equal(serialTrace, parTrace) {
		t.Errorf("trace export differs between -parallel 1 and -parallel 4 (%d vs %d bytes)", len(serialTrace), len(parTrace))
	}
	if !strings.Contains(serialRep, "REGRESSION") {
		t.Errorf("canary report did not flag the degraded snapshot:\n%s", serialRep)
	}
	if !strings.Contains(string(serialFlight), `"kind":"cumulative"`) {
		t.Error("flight recording missing cumulative series")
	}
}
