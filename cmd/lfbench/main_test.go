package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/liteflow-sim/liteflow/internal/experiments"
)

func TestLfbenchList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -list exited %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, r := range experiments.All() {
		if !strings.Contains(out, r.ID) {
			t.Errorf("-list output missing experiment %q", r.ID)
		}
	}
}

func TestLfbenchUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "no-such-figure"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown experiment exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

func TestLfbenchNoArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no-arg run exited %d, want 2", code)
	}
}
