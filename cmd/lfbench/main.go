// Command lfbench runs the paper-reproduction experiments and prints their
// tables/series. Each experiment corresponds to a table or figure of the
// LiteFlow paper (see DESIGN.md §3 for the index).
//
// Usage:
//
//	lfbench -list                 # enumerate experiments
//	lfbench -exp fig11            # run one experiment at full scale
//	lfbench -exp fig11 -scale 0.2 # faster, smaller run
//	lfbench -all                  # regenerate everything (EXPERIMENTS.md data)
//
// With -trace/-metrics-out, the run's telemetry (all experiments share one
// registry and tracer) is exported to Chrome trace-event JSON / Prometheus
// text after the experiments finish.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/liteflow-sim/liteflow/internal/experiments"
	"github.com/liteflow-sim/liteflow/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lfbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "", "experiment ID to run (see -list)")
		all        = fs.Bool("all", false, "run every experiment in paper order")
		list       = fs.Bool("list", false, "list available experiments")
		scale      = fs.Float64("scale", 1.0, "duration/size scale factor (1.0 = paper shape)")
		seed       = fs.Int64("seed", 1, "random seed")
		trace      = fs.String("trace", "", "write Chrome trace-event JSON to this file")
		metricsOut = fs.String("metrics-out", "", "write Prometheus text metrics to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var reg *obs.Registry
	var tracer *obs.Tracer
	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	if *trace != "" || *metricsOut != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(0)
		cfg.Obs = obs.New(reg, tracer)
	}

	switch {
	case *list:
		for _, r := range experiments.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", r.ID, r.Title)
		}
	case *all:
		for _, r := range experiments.All() {
			start := time.Now()
			res := r.Run(cfg)
			fmt.Fprintln(stdout, res.String())
			fmt.Fprintf(stdout, "(%s completed in %.1fs)\n\n", r.ID, time.Since(start).Seconds())
		}
	case *exp != "":
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(stderr, "lfbench: unknown experiment %q (try -list)\n", *exp)
			return 2
		}
		res := r.Run(cfg)
		fmt.Fprintln(stdout, res.String())
	default:
		fs.Usage()
		return 2
	}

	if err := writeExports(*trace, *metricsOut, reg, tracer); err != nil {
		fmt.Fprintln(stderr, "lfbench:", err)
		return 1
	}
	return 0
}

// writeExports flushes telemetry to the requested files, if any.
func writeExports(trace, metricsOut string, reg *obs.Registry, tracer *obs.Tracer) error {
	writeTo := func(path string, write func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if trace != "" {
		if err := writeTo(trace, tracer.WriteChromeTrace); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		if err := writeTo(metricsOut, reg.WritePrometheus); err != nil {
			return err
		}
	}
	return nil
}
