// Command lfbench runs the paper-reproduction experiments and prints their
// tables/series. Each experiment corresponds to a table or figure of the
// LiteFlow paper (see DESIGN.md §3 for the index).
//
// Usage:
//
//	lfbench -list                 # enumerate experiments
//	lfbench -exp fig11            # run one experiment at full scale
//	lfbench -exp fig11 -scale 0.2 # faster, smaller run
//	lfbench -all                  # regenerate everything (EXPERIMENTS.md data)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/liteflow-sim/liteflow/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment in paper order")
		list  = flag.Bool("list", false, "list available experiments")
		scale = flag.Float64("scale", 1.0, "duration/size scale factor (1.0 = paper shape)")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	switch {
	case *list:
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
	case *all:
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		for _, r := range experiments.All() {
			start := time.Now()
			res := r.Run(cfg)
			fmt.Println(res.String())
			fmt.Printf("(%s completed in %.1fs)\n\n", r.ID, time.Since(start).Seconds())
		}
	case *exp != "":
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "lfbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		res := r.Run(experiments.Config{Scale: *scale, Seed: *seed})
		fmt.Println(res.String())
	default:
		flag.Usage()
		os.Exit(2)
	}
}
