// Command lfbench runs the paper-reproduction experiments and prints their
// tables/series. Each experiment corresponds to a table or figure of the
// LiteFlow paper (see DESIGN.md §3 for the index).
//
// Usage:
//
//	lfbench -list                 # enumerate experiments
//	lfbench -exp fig11            # run one experiment at full scale
//	lfbench -exp fig11 -scale 0.2 # faster, smaller run
//	lfbench -all                  # regenerate everything (EXPERIMENTS.md data)
//	lfbench -all -parallel 4      # same bytes, bounded worker pool
//	lfbench -exp fig11 -reps 5    # median across 5 seeds, err = std
//
// Reports and telemetry are deterministic: for a fixed -seed/-scale the
// stdout bytes and -trace/-metrics-out exports are identical regardless of
// -parallel. Wall-clock timing (median/p95 across reps) goes to stderr so
// comparable output stays comparable.
//
// Regression tracking:
//
//	lfbench -bench-out BENCH_$(git rev-parse --short HEAD).json -scale 0.05
//	lfbench -bench-baseline BENCH_baseline.json -scale 0.05
//
// -bench-out snapshots ns/op and allocs/op per experiment (plus the
// query-path micro-benchmarks) to JSON; -bench-baseline re-measures and
// fails (exit 1) when any entry regresses more than -bench-tolerance.
// -bench-allocs-only restricts the comparison to allocation counts, the
// machine-independent half of the snapshot — that is what CI gates on.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/liteflow-sim/liteflow/internal/experiments"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lfbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp         = fs.String("exp", "", "experiment ID to run (see -list)")
		all         = fs.Bool("all", false, "run every experiment in paper order")
		list        = fs.Bool("list", false, "list available experiments")
		scale       = fs.Float64("scale", 1.0, "duration/size scale factor (1.0 = paper shape)")
		seed        = fs.Int64("seed", 1, "random seed (rep r runs at seed+r)")
		parallel    = fs.Int("parallel", 1, "worker-pool size for independent experiments/reps")
		reps        = fs.Int("reps", 1, "repetitions per experiment; results aggregate to the per-point median")
		trace       = fs.String("trace", "", "write Chrome trace-event JSON to this file")
		metricsOut  = fs.String("metrics-out", "", "write Prometheus text metrics to this file")
		flightOut   = fs.String("flight-out", "", "write the flight recording as JSON lines to this file (recorded by experiments that drive a flight recorder, e.g. the fleet scenarios)")
		flightEvery = fs.Duration("flight-interval", 0, "virtual-time flight-recorder sampling interval (0 = per-experiment default)")
		cacheShards = fs.Int("cache-shards", 0, "flow-cache shard count for cache-bound experiments (0 = core default; rounded up to a power of two)")
		simDomains  = fs.Int("sim-domains", 0, "run the experiments that support partitioned execution on a conservative-lookahead parallel engine with this many worker goroutines (0 = classic serial engine); reports are byte-identical for every value, see DESIGN.md §4h")

		benchOut       = fs.String("bench-out", "", "measure ns/op + allocs/op and write a JSON snapshot to this file")
		benchBaseline  = fs.String("bench-baseline", "", "compare a fresh measurement against this JSON snapshot; exit 1 on regression")
		benchTolerance = fs.Float64("bench-tolerance", 0.15, "fractional regression tolerance for -bench-baseline")
		benchAllocs    = fs.Bool("bench-allocs-only", false, "compare only allocs/op (machine-independent; what CI gates on)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *benchOut != "" || *benchBaseline != "" {
		return runBenchMode(benchModeOptions{
			exp: *exp, scale: *scale, seed: *seed, cacheShards: *cacheShards,
			domains: *simDomains,
			out:     *benchOut, baseline: *benchBaseline,
			tolerance: *benchTolerance, allocsOnly: *benchAllocs,
		}, stdout, stderr)
	}

	var reg *obs.Registry
	var tracer *obs.Tracer
	var flight *obs.FlightRecorder
	cfg := experiments.Config{Scale: *scale, Seed: *seed, CacheShards: *cacheShards,
		FlightEvery: netsim.Time(flightEvery.Nanoseconds()), Domains: *simDomains}
	if *trace != "" || *metricsOut != "" || *flightOut != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(0)
		cfg.Obs = obs.New(reg, tracer)
	}
	if *flightOut != "" {
		flight = obs.NewFlightRecorder(0)
		cfg.Flight = flight
	}
	opts := experiments.SuiteOptions{Parallel: *parallel, Reps: *reps}

	var runners []experiments.Runner
	switch {
	case *list:
		for _, r := range experiments.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", r.ID, r.Title)
		}
		return 0
	case *all:
		runners = experiments.All()
	case *exp != "":
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(stderr, "lfbench: unknown experiment %q (try -list)\n", *exp)
			return 2
		}
		runners = []experiments.Runner{r}
	default:
		fs.Usage()
		return 2
	}

	for _, sr := range experiments.RunSuite(runners, cfg, opts) {
		fmt.Fprintln(stdout, sr.Result.String())
		// Wall-clock is host-dependent; keep it off stdout so report bytes
		// compare across -parallel settings and machines.
		if len(sr.Wall) > 1 {
			fmt.Fprintf(stderr, "(%s: median %.1fs, p95 %.1fs over %d reps)\n",
				sr.Runner.ID, sr.WallQuantile(0.5).Seconds(), sr.WallQuantile(0.95).Seconds(), len(sr.Wall))
		} else {
			fmt.Fprintf(stderr, "(%s completed in %.1fs)\n", sr.Runner.ID, sr.WallQuantile(0.5).Seconds())
		}
	}

	if err := writeExports(*trace, *metricsOut, *flightOut, reg, tracer, flight); err != nil {
		fmt.Fprintln(stderr, "lfbench:", err)
		return 1
	}
	if tracer != nil && tracer.Evicted() > 0 {
		fmt.Fprintf(stderr, "lfbench: trace ring overflowed, %d oldest events evicted (raise the ring capacity to keep them)\n", tracer.Evicted())
	}
	return 0
}

// writeExports flushes telemetry to the requested files, if any.
func writeExports(trace, metricsOut, flightOut string, reg *obs.Registry, tracer *obs.Tracer, flight *obs.FlightRecorder) error {
	writeTo := func(path string, write func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if trace != "" {
		if err := writeTo(trace, tracer.WriteChromeTrace); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		if err := writeTo(metricsOut, reg.WritePrometheus); err != nil {
			return err
		}
	}
	if flightOut != "" {
		if err := writeTo(flightOut, flight.WriteJSONL); err != nil {
			return err
		}
	}
	return nil
}
