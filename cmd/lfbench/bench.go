package main

// Benchmark-regression mode: measure ns/op and allocs/op for every
// experiment plus the query-path micro-benchmarks, snapshot to JSON
// (-bench-out) and compare a fresh measurement against a committed snapshot
// (-bench-baseline). ns/op is host-dependent, so cross-machine gates (CI)
// pass -bench-allocs-only and compare only allocation counts, which are
// deterministic for deterministic code.
//
// Measurements run serially even when -parallel is given: allocation
// accounting via runtime.ReadMemStats is process-global and would attribute
// a concurrent job's garbage to whichever benchmark is being timed.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	liteflow "github.com/liteflow-sim/liteflow"
	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/experiments"
	"github.com/liteflow-sim/liteflow/internal/fleet"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/obs"
)

// benchEntry is one measured benchmark in a snapshot.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchSnapshot is the JSON document written by -bench-out. Scale and Seed
// pin the workload shape; comparing snapshots of different shapes is refused.
type benchSnapshot struct {
	Scale   float64      `json:"scale"`
	Seed    int64        `json:"seed"`
	Entries []benchEntry `json:"entries"`
}

type benchModeOptions struct {
	exp         string // one experiment ID, or "" for all
	scale       float64
	seed        int64
	cacheShards int
	// domains, when ≥ 1, additionally measures every experiment that
	// supports partitioned execution under -sim-domains, as a separate
	// "exp/<id>@d<N>" entry next to the serial one.
	domains    int
	out        string
	baseline   string
	tolerance  float64
	allocsOnly bool
}

func runBenchMode(o benchModeOptions, stdout, stderr io.Writer) int {
	var runners []experiments.Runner
	if o.exp != "" {
		r, ok := experiments.ByID(o.exp)
		if !ok {
			fmt.Fprintf(stderr, "lfbench: unknown experiment %q (try -list)\n", o.exp)
			return 2
		}
		runners = []experiments.Runner{r}
	} else {
		runners = experiments.All()
	}

	snap := benchSnapshot{Scale: o.scale, Seed: o.seed}
	cfg := experiments.Config{Scale: o.scale, Seed: o.seed, CacheShards: o.cacheShards}
	for _, r := range runners {
		run := r.Run
		snap.Entries = append(snap.Entries, measure("exp/"+r.ID, func(n int) {
			for i := 0; i < n; i++ {
				run(cfg)
			}
		}))
		fmt.Fprintf(stderr, "(measured exp/%s)\n", r.ID)
		if o.domains >= 1 && experiments.SupportsDomains(r.ID) {
			dcfg := cfg
			dcfg.Domains = o.domains
			name := fmt.Sprintf("exp/%s@d%d", r.ID, o.domains)
			snap.Entries = append(snap.Entries, measure(name, func(n int) {
				for i := 0; i < n; i++ {
					run(dcfg)
				}
			}))
			fmt.Fprintf(stderr, "(measured %s)\n", name)
		}
	}
	snap.Entries = append(snap.Entries, measureQueryMicrobenches()...)
	snap.Entries = append(snap.Entries, measureCacheMicrobenches()...)
	snap.Entries = append(snap.Entries, measureFleetMicrobenches()...)
	sort.Slice(snap.Entries, func(i, j int) bool { return snap.Entries[i].Name < snap.Entries[j].Name })

	for _, e := range snap.Entries {
		fmt.Fprintf(stdout, "%-28s %14.0f ns/op %8d allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
	}

	if o.out != "" {
		if err := writeSnapshot(o.out, snap); err != nil {
			fmt.Fprintln(stderr, "lfbench:", err)
			return 1
		}
	}
	if o.baseline != "" {
		base, err := readSnapshot(o.baseline)
		if err != nil {
			fmt.Fprintln(stderr, "lfbench:", err)
			return 1
		}
		problems := compareSnapshots(base, snap, o.tolerance, o.allocsOnly)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(stderr, "lfbench: REGRESSION:", p)
			}
			return 1
		}
		mode := "ns/op + allocs/op"
		if o.allocsOnly {
			mode = "allocs/op only"
		}
		fmt.Fprintf(stdout, "bench comparison OK: %d entries within %.0f%% of %s (%s)\n",
			len(snap.Entries), o.tolerance*100, o.baseline, mode)
	}
	return 0
}

// measure times fn(n) with increasing n until the run is long enough to
// trust (≥ 100ms or a single iteration already exceeding it), reporting
// per-iteration wall time and heap allocations. Experiments take seconds, so
// they settle at n=1; micro-benchmarks scale up.
func measure(name string, fn func(n int)) benchEntry {
	const minTime = 100 * time.Millisecond
	fn(1) // warm caches and lazy initialization outside the timed region
	n := 1
	for {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		fn(n)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		e := benchEntry{
			Name:        name,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
			AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(n),
		}
		if elapsed >= minTime || n >= 1<<24 {
			return e
		}
		// Grow toward minTime with headroom, at least doubling.
		grow := 2 * n
		if elapsed > 0 {
			if target := int(float64(n) * 1.5 * float64(minTime) / float64(elapsed)); target > grow {
				grow = target
			}
		}
		n = grow
	}
}

// measureQueryMicrobenches measures the datapath hot entry points:
// lf_query_model through the flow cache, and the batched variant, per the
// zero-allocation guarantee asserted in alloc_test.go.
func measureQueryMicrobenches() []benchEntry {
	lf, in, out := queryRig()
	single := measure("micro/query_steady_state", func(n int) {
		for i := 0; i < n; i++ {
			if err := lf.QueryModel(1, in, out); err != nil {
				panic(err)
			}
		}
	})

	const batch = 64
	lf2, in2, out2 := queryRig()
	ins := make([]int64, len(in2)*batch)
	outs := make([]int64, len(out2)*batch)
	batched := measure("micro/query_model_batch64", func(n int) {
		for i := 0; i < n; i++ {
			if err := lf2.QueryModelBatch(1, ins, outs, batch); err != nil {
				panic(err)
			}
		}
	})
	return []benchEntry{single, batched}
}

// measureCacheMicrobenches measures the sharded flow cache: steady-state
// lookups with a large resident population (must stay 0 allocs/op), and the
// insert→expire churn cycle through the incremental sweeper (allocates by
// design — the gate tracks the count so the insert path cannot quietly grow).
func measureCacheMicrobenches() []benchEntry {
	lf, in, out := queryRig()
	const resident = 100_000
	for f := 1; f <= resident; f++ {
		if err := lf.QueryModel(liteflow.FlowID(f), in, out); err != nil {
			panic(err)
		}
	}
	next := 0
	many := measure("micro/lookup_many_flows", func(n int) {
		for i := 0; i < n; i++ {
			if err := lf.QueryModel(liteflow.FlowID(next%resident+1), in, out); err != nil {
				panic(err)
			}
			next++
		}
	})

	eng := liteflow.NewEngine()
	cfg := liteflow.DefaultConfig()
	cfg.FlowCacheTimeout = liteflow.Millisecond
	lf2 := liteflow.New(eng, nil, liteflow.DefaultCosts(), cfg)
	net := liteflow.NewNetwork([]int{30, 32, 16, 1},
		[]liteflow.Activation{liteflow.Tanh, liteflow.Tanh, liteflow.Tanh}, 1)
	snap, err := liteflow.BuildSnapshot(net, liteflow.DefaultQuantConfig(), "aurora")
	if err != nil {
		panic(err)
	}
	if _, err := lf2.RegisterModel(snap); err != nil {
		panic(err)
	}
	in2 := make([]int64, 30)
	out2 := make([]int64, 1)
	const batch = 256
	flow := liteflow.FlowID(1)
	churn := measure("micro/sweep_churn", func(n int) {
		for i := 0; i < n; i++ {
			for j := 0; j < batch; j++ {
				if err := lf2.QueryModel(flow, in2, out2); err != nil {
					panic(err)
				}
				flow++
			}
			eng.RunUntil(eng.Now() + 2*liteflow.Millisecond)
		}
	})
	lf2.StopSweeper()
	return []benchEntry{many, churn}
}

// measureFleetMicrobenches measures one full distribution-plane wave — the
// mirror of BenchmarkFleetFanout in bench_test.go: 8 members behind one
// fleet controller, a model that changes every pooled round, so each op is
// push → aggregate → gate → build → 8 bounded-concurrency member installs.
func measureFleetMicrobenches() []benchEntry {
	eng := netsim.NewEngine()
	cfg := core.DefaultConfig()
	cfg.StabilityWindow = 1 // open the correctness gate on the first round
	user := &fanoutUser{net: nn.New([]int{4, 8, 1}, []nn.Activation{nn.Tanh, nn.Linear}, 1), sign: 0.5}
	ctrl := fleet.New(eng, cfg, user, user, user, fleet.Config{
		BatchInterval:         netsim.Millisecond,
		AggregationInterval:   netsim.Millisecond,
		MaxConcurrentInstalls: 8,
	})
	costs := liteflow.DefaultCosts()
	for i := 0; i < 8; i++ {
		cpu := ksim.NewCPU(eng, 4, obs.Scope{})
		if _, err := ctrl.AddMember(core.NewCore(eng, cpu, costs, cfg),
			netlink.NewChannel(eng, cpu, costs, nil)); err != nil {
			panic(err)
		}
	}
	if err := ctrl.Start(); err != nil {
		panic(err)
	}
	input := []float64{0.1, 0.2, 0.3, 0.4}
	fanout := measure("micro/fleet_fanout", func(n int) {
		for i := 0; i < n; i++ {
			for _, m := range ctrl.Members() {
				m.Chan.Push(core.EncodeSample(core.Sample{Input: input, At: eng.Now()}))
			}
			eng.RunUntil(eng.Now() + 2*netsim.Millisecond)
		}
	})
	// Drain the last wave, then verify the rig actually fanned out.
	eng.RunUntil(eng.Now() + 2*netsim.Millisecond)
	ctrl.Stop()
	if st := ctrl.Stats(); st.MemberInstalls == 0 || st.StaleMembers != 0 {
		panic(fmt.Sprintf("fleet fanout rig broken: %d installs, %d stale", st.MemberInstalls, st.StaleMembers))
	}
	return []benchEntry{fanout}
}

// fanoutUser flips the model every pooled adaptation round, so every
// aggregation fails the necessity gate and mints a new epoch.
type fanoutUser struct {
	net  *nn.Network
	sign float64
}

func (u *fanoutUser) Freeze() *nn.Network          { return u.net }
func (u *fanoutUser) Stability() float64           { return 0.5 }
func (u *fanoutUser) Infer(in []float64) []float64 { return u.net.Infer(in) }
func (u *fanoutUser) Adapt([]core.Sample) {
	u.net.Layers[len(u.net.Layers)-1].B[0] += u.sign
	u.sign = -u.sign
}

// queryRig builds the same Aurora-shaped core module bench_test.go uses.
func queryRig() (*liteflow.Core, []int64, []int64) {
	eng := liteflow.NewEngine()
	cfg := liteflow.DefaultConfig()
	cfg.FlowCacheTimeout = 0
	lf := liteflow.New(eng, nil, liteflow.DefaultCosts(), cfg)
	net := liteflow.NewNetwork([]int{30, 32, 16, 1},
		[]liteflow.Activation{liteflow.Tanh, liteflow.Tanh, liteflow.Tanh}, 1)
	snap, err := liteflow.BuildSnapshot(net, liteflow.DefaultQuantConfig(), "aurora")
	if err != nil {
		panic(err)
	}
	if _, err := lf.RegisterModel(snap); err != nil {
		panic(err)
	}
	return lf, make([]int64, 30), make([]int64, 1)
}

func writeSnapshot(path string, s benchSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readSnapshot(path string) (benchSnapshot, error) {
	var s benchSnapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	err = json.Unmarshal(b, &s)
	return s, err
}

// compareSnapshots returns one message per regression of cur against base.
// Entries present only in cur (new benchmarks) pass; entries present only in
// base (a benchmark disappeared) fail, so a snapshot cannot go stale
// silently.
func compareSnapshots(base, cur benchSnapshot, tol float64, allocsOnly bool) []string {
	var problems []string
	if base.Scale != cur.Scale || base.Seed != cur.Seed {
		problems = append(problems, fmt.Sprintf(
			"workload shape mismatch: baseline scale=%g seed=%d, current scale=%g seed=%d (re-run with matching -scale/-seed)",
			base.Scale, base.Seed, cur.Scale, cur.Seed))
		return problems
	}
	curByName := make(map[string]benchEntry, len(cur.Entries))
	for _, e := range cur.Entries {
		curByName[e.Name] = e
	}
	for _, b := range base.Entries {
		c, ok := curByName[b.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: present in baseline but not measured", b.Name))
			continue
		}
		if float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol)+0.5 {
			problems = append(problems, fmt.Sprintf("%s: allocs/op %d -> %d (>+%.0f%%)",
				b.Name, b.AllocsPerOp, c.AllocsPerOp, tol*100))
		}
		if !allocsOnly && b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tol) {
			problems = append(problems, fmt.Sprintf("%s: ns/op %.0f -> %.0f (>+%.0f%%)",
				b.Name, b.NsPerOp, c.NsPerOp, tol*100))
		}
	}
	return problems
}
