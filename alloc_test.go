package liteflow_test

// Allocation guards for the inference hot path. cmd/lfbench's regression
// mode snapshots allocs/op into BENCH_<rev>.json; these tests are the
// stricter, always-on gate: steady-state lf_query_model and the batched
// variant must not touch the heap at all. Run in CI's bench-smoke job next
// to the -race suite.

import (
	"testing"

	liteflow "github.com/liteflow-sim/liteflow"
)

// queryFixture builds the Table-1 rig: a registered 30→32→16→1 snapshot on a
// core with the flow cache pinned (timeout 0 ⇒ the first query populates the
// cache and every later one is a steady-state hit).
func queryFixture(t testing.TB) (lf *liteflow.Core, in, out []int64) {
	t.Helper()
	eng := liteflow.NewEngine()
	cfg := liteflow.DefaultConfig()
	cfg.FlowCacheTimeout = 0
	lf = liteflow.New(eng, nil, liteflow.DefaultCosts(), cfg)
	net := liteflow.NewNetwork([]int{30, 32, 16, 1},
		[]liteflow.Activation{liteflow.Tanh, liteflow.Tanh, liteflow.Tanh}, 1)
	snap, err := liteflow.BuildSnapshot(net, liteflow.DefaultQuantConfig(), "aurora")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lf.RegisterModel(snap); err != nil {
		t.Fatal(err)
	}
	return lf, make([]int64, 30), make([]int64, 1)
}

// TestQuerySteadyStateZeroAllocs is the zero-allocation contract for the
// fast path: after warmup (flow-cache entry + arena sized), QueryModel must
// perform no heap allocations per call.
func TestQuerySteadyStateZeroAllocs(t *testing.T) {
	lf, in, out := queryFixture(t)
	if err := lf.QueryModel(1, in, out); err != nil { // warm cache + arena
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := lf.QueryModel(1, in, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state QueryModel allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestQueryModelBatchZeroAllocs extends the contract to the strided batch
// entry point used by the experiment harness's inner loops.
func TestQueryModelBatchZeroAllocs(t *testing.T) {
	lf, _, _ := queryFixture(t)
	const n = 64
	ins := make([]int64, n*30)
	outs := make([]int64, n*1)
	if err := lf.QueryModelBatch(1, ins, outs, n); err != nil { // warm
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := lf.QueryModelBatch(1, ins, outs, n); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state QueryModelBatch allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestQuerySteadyStateZeroAllocsWithSampler extends the contract to an
// observability-enabled core with a flight recorder attached: metric updates
// on the query path are atomic adds, and the sampler runs on engine ticks,
// never inside lf_query_model — so the steady state stays allocation-free
// even while every series is being recorded.
func TestQuerySteadyStateZeroAllocsWithSampler(t *testing.T) {
	eng := liteflow.NewEngine()
	cfg := liteflow.DefaultConfig()
	cfg.FlowCacheTimeout = 0
	reg := liteflow.NewMetricsRegistry()
	lf := liteflow.NewCore(eng, nil, liteflow.DefaultCosts(), cfg,
		liteflow.WithScope(liteflow.NewScope(reg, nil)))
	net := liteflow.NewNetwork([]int{30, 32, 16, 1},
		[]liteflow.Activation{liteflow.Tanh, liteflow.Tanh, liteflow.Tanh}, 1)
	snap, err := liteflow.BuildSnapshot(net, liteflow.DefaultQuantConfig(), "aurora")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lf.RegisterModel(snap); err != nil {
		t.Fatal(err)
	}
	in, out := make([]int64, 30), make([]int64, 1)
	if err := lf.QueryModel(1, in, out); err != nil { // warm cache + arena
		t.Fatal(err)
	}

	fr := liteflow.NewFlightRecorder(0)
	fr.Sample(reg, 1) // series rings exist before the measured window
	allocs := testing.AllocsPerRun(200, func() {
		if err := lf.QueryModel(1, in, out); err != nil {
			t.Fatal(err)
		}
	})
	fr.Sample(reg, 2)
	if allocs != 0 {
		t.Errorf("steady-state QueryModel with sampler allocates %.1f allocs/op, want 0", allocs)
	}
	if fr.Ticks() != 2 || fr.Len() == 0 {
		t.Fatalf("flight recorder did not record: ticks=%d series=%d", fr.Ticks(), fr.Len())
	}
}
