// Package liteflow is the public API of LiteFlow-Go, a reproduction of
// "LiteFlow: Towards High-performance Adaptive Neural Networks for Kernel
// Datapath" (SIGCOMM 2022) on a simulated kernel datapath.
//
// LiteFlow decouples an adaptive neural network's control path into a
// kernel-space fast path for inference (integer-quantized snapshot modules,
// an inference router with active/standby switching and a flow-consistency
// cache) and a userspace slow path for model tuning (batched data delivery,
// convergence and fidelity gating, conservative snapshot installation).
//
// A minimal deployment looks like:
//
//	eng := liteflow.NewEngine()
//	lf := liteflow.New(eng, nil, liteflow.DefaultCosts(), liteflow.DefaultConfig())
//	snap, _ := liteflow.BuildSnapshot(trainedNet, liteflow.DefaultQuantConfig(), "model0")
//	lf.RegisterModel(snap)                  // lf_register_model
//	lf.QueryModel(flowID, input, output)    // lf_query_model
//
// and the slow path attaches with NewSlowPath + a Freezer/Evaluator/Adapter
// implementation. See examples/quickstart for a complete program and
// DESIGN.md for the system inventory.
//
// # Functional options
//
// Constructors take variadic Option values instead of trailing positional
// extras:
//
//	lf := liteflow.NewCore(eng, cpu, costs, cfg,
//		liteflow.WithScope(sc),          // telemetry export
//		liteflow.WithFaults(inj),        // deterministic fault injection
//		liteflow.WithWatchdog(liteflow.WatchdogConfig{}))
//
// WithScope attaches an observability Scope (metrics + tracing). WithFaults
// attaches a deterministic, seed-driven fault injector (NewFaultInjector)
// that perturbs the netlink boundary and the slow path. WithWatchdog arms
// the core's slow-path watchdog: if no batch reaches the service within the
// configured window the core degrades gracefully to its last-good snapshot
// (counted in liteflow_core_degraded_total) instead of serving stale standby
// state; while degraded, Activate is rejected with ErrDegraded so the
// last-good snapshot stays pinned until the slow path recovers. WithRetry
// bounds the slow path's snapshot-install retry/backoff policy. The pre-options constructors (New, NewCPU, NewChannel, NewService)
// remain as deprecated thin wrappers.
//
// # Errors
//
// Failures are classified with wrapped sentinel errors, tested via
// errors.Is: ErrSnapshotBuild (snapshot generation/validation failed, the
// install is retried with backoff), ErrChannelClosed (netlink channel used
// after Close), ErrServiceDown (slow-path service inside an injected outage
// window), ErrMalformedSample (a netlink payload failed validation at the
// kernel boundary and was rejected).
package liteflow

import (
	"net/http"

	"github.com/liteflow-sim/liteflow/internal/codegen"
	"github.com/liteflow-sim/liteflow/internal/core"
	"github.com/liteflow-sim/liteflow/internal/fault"
	"github.com/liteflow-sim/liteflow/internal/ksim"
	"github.com/liteflow-sim/liteflow/internal/netlink"
	"github.com/liteflow-sim/liteflow/internal/netsim"
	"github.com/liteflow-sim/liteflow/internal/nn"
	"github.com/liteflow-sim/liteflow/internal/obs"
	"github.com/liteflow-sim/liteflow/internal/opt"
	"github.com/liteflow-sim/liteflow/internal/quant"
)

// Option configures a constructor (see the package doc's "Functional
// options" section). Options are shared across all LiteFlow constructors;
// each constructor applies the ones relevant to it.
type Option = opt.Option

// Fault-injection and resilience types.
type (
	// FaultInjector is a deterministic, seed-driven fault source (message
	// drop/corruption, batch delay/reorder, snapshot build failures, service
	// outages, CPU spikes). A nil *FaultInjector is valid and injects
	// nothing.
	FaultInjector = fault.Injector
	// FaultProfile selects which fault classes fire and how often.
	FaultProfile = fault.Profile
	// FaultStats counts injected faults by kind.
	FaultStats = fault.Stats
	// WatchdogConfig tunes the core's slow-path watchdog (zero fields pick
	// defaults: 1 s window, window/2 check interval).
	WatchdogConfig = opt.Watchdog
	// RetryConfig bounds snapshot-install retries (zero fields pick
	// defaults: 3 attempts, 50 ms base backoff, 1 s cap).
	RetryConfig = opt.Retry
)

// WithScope attaches an observability Scope to a constructor.
func WithScope(sc Scope) Option { return opt.WithScope(sc) }

// WithFaults attaches a fault injector to a constructor. The same injector
// should be shared across the channel and slow path so its deterministic
// streams interleave reproducibly.
func WithFaults(inj *FaultInjector) Option { return opt.WithFaults(inj) }

// WithWatchdog arms the core's slow-path watchdog with the given
// configuration (zero value selects defaults).
func WithWatchdog(w WatchdogConfig) Option { return opt.WithWatchdog(w) }

// WithRetry sets the slow path's snapshot-install retry policy.
func WithRetry(r RetryConfig) Option { return opt.WithRetry(r) }

// NewFaultInjector builds a deterministic fault injector for profile p,
// seeded with seed. Same profile + seed ⇒ identical fault decisions, so
// faulted runs stay byte-reproducible. The Scope exports
// liteflow_fault_injected_total and per-fault trace events.
func NewFaultInjector(p FaultProfile, seed int64, sc Scope) *FaultInjector {
	return fault.New(p, seed, sc)
}

// FaultProfileByName maps a CLI-friendly name ("none", "netlink",
// "slowpath", "chaos") to a preset fault profile; ok is false for unknown
// names.
func FaultProfileByName(name string) (FaultProfile, bool) { return fault.ByName(name) }

// Sentinel errors re-exported from the internal packages; classify with
// errors.Is (see the package doc's "Errors" section).
var (
	ErrSnapshotBuild     = codegen.ErrSnapshotBuild
	ErrChannelClosed     = netlink.ErrChannelClosed
	ErrServiceDown       = core.ErrServiceDown
	ErrMalformedSample   = core.ErrMalformedSample
	ErrNoModel           = core.ErrNoModel
	ErrDimensionMismatch = core.ErrDimensionMismatch
	ErrDegraded          = core.ErrDegraded
)

// Core framework types (paper Table 1 and §4). Core's methods map onto the
// paper's API: RegisterModel = lf_register_model, RegisterIO/UnregisterIO =
// lf_register_io/lf_unregister_io, QueryModel = lf_query_model.
type (
	// Core is the kernel-space LiteFlow core module.
	Core = core.Core
	// Config tunes the update policy (α threshold, stability window,
	// flow-cache timeout, quantization).
	Config = core.Config
	// Model is an installed NN snapshot with its router state.
	Model = core.Model
	// IOModule is a user input collector & output enforcer.
	IOModule = core.IOModule
	// Service is the userspace slow-path service.
	Service = core.Service
	// Sample is one kernel-collected training record.
	Sample = core.Sample
	// Freezer, Evaluator and Adapter are the three user interfaces of the
	// userspace service (paper §4.1).
	Freezer   = core.Freezer
	Evaluator = core.Evaluator
	Adapter   = core.Adapter
	// Stats counts core-module activity; ServiceStats the slow path's.
	Stats        = core.Stats
	ServiceStats = core.ServiceStats
	// FlowBackend adapts the core to per-flow congestion-control queries.
	FlowBackend = core.FlowBackend
)

// Substrate types needed to embed LiteFlow in a simulation.
type (
	// Engine is the discrete-event simulator clock all components share.
	Engine = netsim.Engine
	// FlowID identifies a transport flow (flow cache key).
	FlowID = netsim.FlowID
	// CPU models a host's finite processing capacity.
	CPU = ksim.CPU
	// Costs is the CPU cost calibration table.
	Costs = ksim.Costs
	// Channel is the batched kernel↔userspace netlink channel.
	Channel = netlink.Channel
	// Network is a float64 userspace MLP (the tunable slow-path model).
	Network = nn.Network
	// QuantConfig controls integer quantization of snapshots.
	QuantConfig = quant.Config
	// Program is an integer-only executable snapshot.
	Program = quant.Program
	// Snapshot is a generated module: source artifact plus executable.
	Snapshot = codegen.Module
)

// Time is virtual simulation time in nanoseconds.
type Time = netsim.Time

// Re-exported durations.
const (
	Microsecond = netsim.Microsecond
	Millisecond = netsim.Millisecond
	Second      = netsim.Second
)

// NewEngine returns a fresh discrete-event engine.
func NewEngine() *Engine { return netsim.NewEngine() }

// NewHostCPU returns a CPU with the given core count attached to eng.
// WithScope exports per-category busy-time telemetry.
func NewHostCPU(eng *Engine, cores int, options ...Option) *CPU {
	return ksim.NewHostCPU(eng, cores, options...)
}

// NewCPU is the pre-options form of NewHostCPU.
//
// Deprecated: use NewHostCPU with WithScope.
func NewCPU(eng *Engine, cores int, sc ...Scope) *CPU { return ksim.NewCPU(eng, cores, sc...) }

// DefaultCosts returns the calibrated CPU cost table (see internal/ksim).
func DefaultCosts() Costs { return ksim.DefaultCosts() }

// DefaultConfig returns the paper-calibrated framework configuration
// (α = 5%, T-independent gating defaults, 1000× output scaling).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultQuantConfig returns the default high-precision integer quantization
// settings (paper §3.1).
func DefaultQuantConfig() QuantConfig { return quant.DefaultConfig() }

// NewCore creates a LiteFlow core module on eng. cpu may be nil to disable
// CPU cost accounting. WithScope exports fast-path telemetry; WithWatchdog
// arms graceful degradation when the slow path stalls.
func NewCore(eng *Engine, cpu *CPU, costs Costs, cfg Config, options ...Option) *Core {
	return core.NewCore(eng, cpu, costs, cfg, options...)
}

// New is the pre-options form of NewCore.
//
// Deprecated: use NewCore with WithScope.
func New(eng *Engine, cpu *CPU, costs Costs, cfg Config, sc ...Scope) *Core {
	return core.New(eng, cpu, costs, cfg, sc...)
}

// NewNetwork builds a float userspace network with the given layer sizes and
// activations, deterministically initialized from seed.
func NewNetwork(sizes []int, acts []Activation, seed int64) *Network {
	return nn.New(sizes, acts, seed)
}

// Activation selects a layer nonlinearity for NewNetwork.
type Activation = nn.Activation

// Supported activations.
const (
	Linear  = nn.Linear
	ReLU    = nn.ReLU
	Tanh    = nn.Tanh
	Sigmoid = nn.Sigmoid
)

// Quantize converts a trained float network into an integer-only program.
func Quantize(net *Network, cfg QuantConfig) *Program { return quant.Quantize(net, cfg) }

// BuildSnapshot quantizes net and generates a validated snapshot module —
// quantization, layer-wise code translation, and the compile check in one
// step (paper §3.1).
func BuildSnapshot(net *Network, cfg QuantConfig, name string) (*Snapshot, error) {
	return codegen.Build(quant.Quantize(net, cfg), name)
}

// GenerateSource renders the snapshot module source for a quantized program
// without building the executable wrapper (the lfgen tool's core).
func GenerateSource(p *Program, name string) (string, error) {
	return codegen.Generate(p, name)
}

// NewNetlinkChannel creates a batched netlink channel on the given host CPU.
// Pass the service's HandleBatch (or use NewSlowPath, which wires itself).
// WithScope exports batch-delivery telemetry; WithFaults injects message and
// batch faults at flush time.
func NewNetlinkChannel(eng *Engine, cpu *CPU, costs Costs, deliver func([]netlink.Message), options ...Option) *Channel {
	return netlink.NewChannel(eng, cpu, costs, deliver, options...)
}

// NewChannel is the pre-options form of NewNetlinkChannel.
//
// Deprecated: use NewNetlinkChannel with WithScope.
func NewChannel(eng *Engine, cpu *CPU, costs Costs, deliver func([]netlink.Message), sc ...Scope) *Channel {
	return netlink.New(eng, cpu, costs, deliver, sc...)
}

// Message is one netlink record; EncodeSample/DecodeSample convert samples.
type Message = netlink.Message

// EncodeSample packs a training sample for the kernel-side batch buffer.
func EncodeSample(s Sample) Message { return core.EncodeSample(s) }

// DecodeSample unpacks a batched record; ok is false for malformed payloads.
func DecodeSample(m Message) (Sample, bool) { return core.DecodeSample(m) }

// ParseSample unpacks a batched record, returning an error wrapping
// ErrMalformedSample for payloads that fail kernel-boundary validation.
func ParseSample(m Message) (Sample, error) { return core.ParseSample(m) }

// NewSlowPath wires the userspace slow path to a core and its channel. The
// service inherits the core's Scope unless WithScope overrides it; WithFaults
// injects snapshot build failures and service outages; WithRetry bounds the
// install retry policy.
func NewSlowPath(c *Core, ch *Channel, f Freezer, e Evaluator, a Adapter, options ...Option) *Service {
	return core.NewSlowPath(c, ch, f, e, a, options...)
}

// NewService is the pre-options form of NewSlowPath.
//
// Deprecated: use NewSlowPath with WithScope.
func NewService(c *Core, ch *Channel, f Freezer, e Evaluator, a Adapter, sc ...Scope) *Service {
	return core.NewService(c, ch, f, e, a, sc...)
}

// NewFlowBackend returns a fast-path inference backend for one flow,
// compatible with the cc package's Backend interface.
func NewFlowBackend(c *Core, flow FlowID) *FlowBackend {
	return core.NewFlowBackend(c, flow)
}

// Observability (internal/obs): a metrics registry with Prometheus text
// export and a virtual-time event tracer with Chrome trace-event export. A
// zero-value Scope is a no-op: instruments still count, nothing is exported.
type (
	// Scope carries the registry/tracer pair (plus labels) through
	// constructors; the zero value disables export.
	Scope = obs.Scope
	// MetricsRegistry collects named counters, gauges and histograms.
	MetricsRegistry = obs.Registry
	// Tracer records structured simulation events in a bounded ring.
	Tracer = obs.Tracer
	// MetricLabel is one key=value metric dimension.
	MetricLabel = obs.Label
	// FlightRecorder samples every registry series into per-series ring
	// buffers on a virtual-time tick and answers windowed rate/level
	// queries (Window, Delta) — the canary-gate primitive.
	FlightRecorder = obs.FlightRecorder
	// FlightWindow is a closed virtual-time interval for FlightRecorder
	// queries.
	FlightWindow = obs.TimeWindow
	// SpanTracer mints snapshot-lifecycle spans keyed by snapshot version;
	// see internal/obs and DESIGN.md §4g.
	SpanTracer = obs.SpanTracer
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer returns an event tracer retaining the last capacity events
// (<= 0 selects the default capacity).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewFlightRecorder returns a flight recorder retaining up to capacity
// points per series (<= 0 selects the default capacity). Drive it from the
// simulation with Sample(reg, now) on a fixed virtual-time tick.
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewFlightRecorder(capacity) }

// NewScope binds a registry and tracer (either may be nil) into a Scope to
// pass via WithScope to NewCore, NewHostCPU, NewNetlinkChannel, NewSlowPath
// and the topology builders.
func NewScope(reg *MetricsRegistry, tr *Tracer) Scope { return obs.New(reg, tr) }

// NewTelemetryHandler serves /metrics (Prometheus text format),
// /debug/trace (Chrome trace-event JSON; ?format=jsonl for JSON lines) and —
// when a flight recorder is supplied — /debug/flight (JSON lines) for the
// given registry and tracer; any argument may be nil.
func NewTelemetryHandler(reg *MetricsRegistry, tr *Tracer, flight ...*FlightRecorder) http.Handler {
	return obs.NewHTTPHandler(reg, tr, flight...)
}
